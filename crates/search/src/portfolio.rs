//! Portfolio search: multiple search modules combined in one run.
//!
//! The paper's Sec. VII names this as future work: "we plan to combine
//! the use of multiple search modules in the same run to speed up the
//! search process". This module implements it: the budget is spent in
//! rounds, each round split between the member modules; all members
//! share one memo table (through the driver's [`crate::Bookkeeper`]) so
//! no variant is ever assessed twice, and each member resumes from the
//! shared best-so-far. Budget allocation across rounds shifts toward
//! members that recently improved the shared best (the same credit idea
//! the bandit uses across techniques, lifted to whole modules).
//!
//! As an ask/tell machine the portfolio runs one member *session* at a
//! time; each proposal is tagged with its session so observations
//! arriving after a batch update the right member's walking state and
//! credit. With batches of one this is exactly the sequential
//! round-robin; with larger batches a session may overshoot its share
//! by at most the in-flight batch, deterministically for a fixed batch
//! size.

use std::collections::VecDeque;

use locus_space::{Point, Space, SplitMix64};
use locus_trace::{kv, Tracer};

use crate::{LegalityOracle, MctsTuner, Objective, SearchModule, TraceSampler};

/// Identifier of a member module in a [`PortfolioSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Member {
    /// The OpenTuner-like bandit ensemble.
    Bandit,
    /// The Hyperopt-like annealer.
    Anneal,
    /// Uniform random sampling.
    Random,
    /// Decision-site tree search ([`MctsTuner`]).
    Mcts,
    /// Probabilistic trace sampling ([`TraceSampler`]).
    Sampler,
}

/// A stateful member module living inside one session. The flat
/// members (bandit/anneal/random) are re-derived from the session RNG
/// each round; these two carry real per-session machinery.
#[derive(Debug, Clone)]
enum MemberInner {
    Mcts(Box<MctsTuner>),
    Sampler(Box<TraceSampler>),
}

/// One member's in-progress slice of a round.
#[derive(Debug, Clone)]
struct Session {
    member: Member,
    /// Index into the member list (for credit updates).
    mi: usize,
    serial: u64,
    rng: SplitMix64,
    /// Stateful member instance (tree/sampler members only).
    inner: Option<MemberInner>,
    /// Member-local walking point (annealing keeps its own walk; the
    /// others track the shared best).
    current: Option<Point>,
    temperature: f64,
    /// Fresh, non-invalid evaluations attributed to this session.
    spent: usize,
    proposals: usize,
    share: usize,
    /// Observations attributed to this session, and how many of them
    /// came back `Invalid` (verifier-pruned or decoder-refused).
    observed: usize,
    invalid: usize,
    /// Shared best value when the session started, for credit.
    before: Option<f64>,
}

/// A portfolio over the built-in search modules.
///
/// (Member modules are re-instantiated per round with derived seeds; a
/// fully generic portfolio over `dyn SearchModule` would need members to
/// expose resumable state, which the built-ins do via their seeds.)
#[derive(Clone)]
pub struct PortfolioSearch {
    seed: u64,
    members: Vec<Member>,
    /// Evaluations per member per round.
    round_share: usize,
    credit: Vec<f64>,
    round: u64,
    /// Credit total frozen at round start, like the sequential loop.
    round_total: f64,
    /// Fresh evaluations spent anywhere in the current round.
    round_spent: usize,
    next_member: usize,
    session: Option<Session>,
    next_serial: u64,
    /// `(session serial, member index)` per unobserved proposal.
    pending: VecDeque<(u64, usize)>,
    /// Shared best across all members.
    best: Option<(Point, f64)>,
    exhausted: bool,
    oracle: Option<LegalityOracle>,
    tracer: Tracer,
}

impl std::fmt::Debug for PortfolioSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortfolioSearch")
            .field("seed", &self.seed)
            .field("members", &self.members)
            .field("credit", &self.credit)
            .field("round", &self.round)
            .field("exhausted", &self.exhausted)
            .field("oracle", &self.oracle.is_some())
            .finish()
    }
}

impl Member {
    fn label(self) -> &'static str {
        match self {
            Member::Bandit => "bandit",
            Member::Anneal => "anneal",
            Member::Random => "random",
            Member::Mcts => "mcts",
            Member::Sampler => "sampler",
        }
    }
}

impl PortfolioSearch {
    /// A portfolio of all five built-in modules: the bandit, the
    /// annealer, uniform random, MCTS, and the trace sampler.
    pub fn new(seed: u64) -> PortfolioSearch {
        PortfolioSearch {
            seed,
            members: vec![
                Member::Bandit,
                Member::Anneal,
                Member::Random,
                Member::Mcts,
                Member::Sampler,
            ],
            round_share: 6,
            credit: Vec::new(),
            round: 0,
            round_total: 0.0,
            round_spent: 0,
            next_member: 0,
            session: None,
            next_serial: 0,
            pending: VecDeque::new(),
            best: None,
            exhausted: false,
            oracle: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Per-member credits, in member-list order (for tests and the
    /// tuning daemon's introspection endpoints).
    pub fn credits(&self) -> &[f64] {
        &self.credit
    }

    /// Overrides the member list.
    pub fn with_members(mut self, members: Vec<Member>) -> PortfolioSearch {
        self.members = members;
        self
    }

    /// Overrides the per-member evaluations per round.
    pub fn with_round_share(mut self, share: usize) -> PortfolioSearch {
        self.round_share = share.max(1);
        self
    }

    fn open_session(&mut self, space: &Space) {
        let mi = self.next_member;
        let share = ((self.credit[mi] / self.round_total)
            * (self.round_share * self.members.len()) as f64)
            .round()
            .max(1.0) as usize;
        let seed = self.seed ^ self.round.wrapping_mul(0x9e37_79b9) ^ mi as u64;
        let inner = match self.members[mi] {
            Member::Mcts => {
                let mut m = Box::new(MctsTuner::new(seed ^ 0x517c_c1b7).with_sync_block(1));
                m.attach_tracer(&self.tracer);
                if let Some(oracle) = &self.oracle {
                    m.attach_pruner(oracle);
                }
                m.begin(space, share * 4);
                if let Some((p, v)) = &self.best {
                    m.seed_observations(space, &[(p.clone(), *v)]);
                }
                Some(MemberInner::Mcts(m))
            }
            Member::Sampler => {
                let mut m = Box::new(TraceSampler::new(seed ^ 0x517c_c1b7).with_sync_block(1));
                m.attach_tracer(&self.tracer);
                if let Some(oracle) = &self.oracle {
                    m.attach_pruner(oracle);
                }
                m.begin(space, share * 4);
                if let Some((p, v)) = &self.best {
                    m.seed_observations(space, &[(p.clone(), *v)]);
                }
                Some(MemberInner::Sampler(m))
            }
            _ => None,
        };
        self.session = Some(Session {
            member: self.members[mi],
            mi,
            serial: self.next_serial,
            rng: SplitMix64::new(seed),
            inner,
            current: self.best.as_ref().map(|(p, _)| p.clone()),
            temperature: 0.2,
            spent: 0,
            proposals: 0,
            share,
            observed: 0,
            invalid: 0,
            before: self.best.as_ref().map(|(_, v)| *v),
        });
        self.next_serial += 1;
        let (member, round, credit) = (self.members[mi], self.round, self.credit[mi]);
        self.tracer.instant("search", "portfolio-session", || {
            vec![
                kv("member", member.label()),
                kv("share", share as u64),
                kv("round", round),
                kv("credit", credit),
            ]
        });
    }

    fn close_session(&mut self) {
        let Some(session) = self.session.take() else {
            return;
        };
        let after = self.best.as_ref().map(|(_, v)| *v);
        let improved = match (session.before, after) {
            (None, Some(_)) => true,
            (Some(b), Some(a)) => a < b,
            _ => false,
        };
        let mi = session.mi;
        if session.observed > 0 && session.invalid == session.observed {
            // Every observed outcome this session was refused: the
            // member is stuck proposing into a pruned region. Halve
            // its credit with no participation floor, so the rest of
            // the portfolio absorbs its share next round.
            self.credit[mi] = (self.credit[mi] * 0.5).max(0.01);
            let (member, round, credit) = (session.member, self.round, self.credit[mi]);
            self.tracer.instant("search", "portfolio-demote", || {
                vec![
                    kv("member", member.label()),
                    kv("round", round),
                    kv("credit", credit),
                    kv("refused", session.invalid as u64),
                ]
            });
        } else {
            self.credit[mi] = (self.credit[mi] * 0.7) + if improved { 1.0 } else { 0.1 };
        }
        self.next_member += 1;
        if self.next_member >= self.members.len() {
            // Round boundary: a round that spent nothing (and has no
            // observations in flight that could still change that)
            // means the space is exhausted.
            if self.round_spent == 0 && self.pending.is_empty() {
                self.exhausted = true;
            }
            self.next_member = 0;
            self.round += 1;
            self.round_spent = 0;
            self.round_total = self.credit.iter().sum();
        }
    }
}

impl Default for PortfolioSearch {
    fn default() -> PortfolioSearch {
        PortfolioSearch::new(0x90f0)
    }
}

impl SearchModule for PortfolioSearch {
    fn name(&self) -> &str {
        "portfolio (multi-module)"
    }

    fn begin(&mut self, _space: &Space, _budget: usize) {
        self.credit = vec![1.0; self.members.len()];
        self.round = 0;
        self.round_total = self.members.len() as f64;
        self.round_spent = 0;
        self.next_member = 0;
        self.session = None;
        self.next_serial = 0;
        self.pending.clear();
        self.best = None;
        self.exhausted = false;
    }

    fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    fn attach_pruner(&mut self, oracle: &LegalityOracle) {
        self.oracle = Some(std::sync::Arc::clone(oracle));
    }

    fn propose(&mut self, space: &Space) -> Option<Point> {
        if self.members.is_empty() || self.exhausted {
            return None;
        }
        // Retire the active session once it spent its share or ran out
        // of proposal attempts, then open the next member's.
        loop {
            match &self.session {
                Some(s) if s.spent >= s.share || s.proposals >= s.share * 16 + 16 => {
                    self.close_session();
                    if self.exhausted {
                        return None;
                    }
                    continue;
                }
                Some(_) => {}
                None => {
                    self.open_session(space);
                }
            }
            let best = self.best.as_ref().map(|(p, _)| p.clone());
            let session = self.session.as_mut().expect("active session");
            session.proposals += 1;
            let proposal = match &mut session.inner {
                Some(MemberInner::Mcts(m)) => m.propose(space),
                Some(MemberInner::Sampler(m)) => m.propose(space),
                None => {
                    let rng = &mut session.rng;
                    Some(match session.member {
                        Member::Bandit => match &best {
                            Some(b) if rng.chance(0.75) => {
                                let strength = 1 + rng.below_usize(3);
                                space.mutate(b, strength, rng)
                            }
                            _ => space.random_point(rng),
                        },
                        Member::Anneal => match session.current.clone() {
                            Some(point) if !rng.chance(0.15) => space.mutate(&point, 1, rng),
                            _ => space.random_point(rng),
                        },
                        _ => space.random_point(rng),
                    })
                }
            };
            match proposal {
                Some(point) => {
                    self.pending.push_back((session.serial, session.mi));
                    return Some(point);
                }
                None => {
                    // The stateful member dried up (exhausted its
                    // reachable region): retire the session early.
                    self.close_session();
                    if self.exhausted {
                        return None;
                    }
                }
            }
        }
    }

    fn observe(&mut self, point: &Point, objective: Objective, fresh: bool) {
        let Some((serial, _mi)) = self.pending.pop_front() else {
            return;
        };
        let before = self.best.as_ref().map(|(_, v)| *v);
        if let Objective::Value(v) = objective {
            if v.is_finite() && before.is_none_or(|b| v < b) {
                self.best = Some((point.clone(), v));
            }
        }
        if fresh && !matches!(objective, Objective::Invalid) {
            self.round_spent += 1;
        }
        let Some(session) = self.session.as_mut() else {
            return;
        };
        if session.serial != serial {
            return; // proposal from an already-retired session
        }
        session.observed += 1;
        if matches!(objective, Objective::Invalid) {
            session.invalid += 1;
        }
        if fresh && !matches!(objective, Objective::Invalid) {
            session.spent += 1;
        }
        if let Some(inner) = &mut session.inner {
            match inner {
                MemberInner::Mcts(m) => m.observe(point, objective, fresh),
                MemberInner::Sampler(m) => m.observe(point, objective, fresh),
            }
            return; // stateful members keep their own walking state
        }
        // Member-local acceptance (annealing keeps a walking point).
        match (session.member, objective) {
            (Member::Anneal, Objective::Value(v)) => {
                let accept = match (&session.current, before) {
                    (Some(_), Some(b)) => {
                        let denom = (session.temperature * b.abs()).max(1e-12);
                        let mut prob = (-(v - b) / denom).exp();
                        if !prob.is_finite() {
                            prob = 0.0;
                        }
                        v < b || session.rng.chance(prob.clamp(0.0, 1.0))
                    }
                    _ => true,
                };
                if accept {
                    session.current = Some(point.clone());
                }
                session.temperature *= 0.95;
            }
            (_, Objective::Value(_)) => {
                session.current = self.best.as_ref().map(|(p, _)| p.clone());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use crate::{BanditTuner, RandomSearch};

    #[test]
    fn portfolio_converges() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = PortfolioSearch::new(2).search(&space, 120, &mut f);
        let (_, best) = out.best.unwrap();
        assert!(best < 0.5, "portfolio best {best}");
    }

    #[test]
    fn members_share_the_memo_table() {
        let space = quadratic_space();
        let mut calls = 0usize;
        let mut f = |p: &Point| {
            calls += 1;
            quadratic_objective(p)
        };
        let out = PortfolioSearch::new(3).search(&space, 60, &mut f);
        // Every objective call corresponds to a distinct point: no
        // member re-assessed another member's variant.
        assert_eq!(calls, out.evaluations + out.invalid);
        assert!(out.duplicates > 0, "members did propose overlapping points");
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let space = quadratic_space();
        let mut f1 = quadratic_objective;
        let mut f2 = quadratic_objective;
        let a = PortfolioSearch::new(9).search(&space, 30, &mut f1);
        let b = PortfolioSearch::new(9).search(&space, 30, &mut f2);
        assert_eq!(a.evaluations, 30);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn no_worse_than_its_weakest_member_on_average() {
        let space = quadratic_space();
        let budget = 40;
        let mut pf_total = 0.0;
        let mut rnd_total = 0.0;
        let mut bandit_total = 0.0;
        for seed in 0..5 {
            let mut f = quadratic_objective;
            pf_total += PortfolioSearch::new(seed)
                .search(&space, budget, &mut f)
                .best
                .unwrap()
                .1;
            let mut f = quadratic_objective;
            rnd_total += RandomSearch::new(seed)
                .search(&space, budget, &mut f)
                .best
                .unwrap()
                .1;
            let mut f = quadratic_objective;
            bandit_total += BanditTuner::new(seed)
                .search(&space, budget, &mut f)
                .best
                .unwrap()
                .1;
        }
        let worst = rnd_total.max(bandit_total);
        assert!(
            pf_total <= worst * 1.2,
            "portfolio {pf_total} vs worst member {worst}"
        );
    }

    #[test]
    fn custom_member_lists_work() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = PortfolioSearch::new(4)
            .with_members(vec![Member::Random])
            .with_round_share(10)
            .search(&space, 20, &mut f);
        assert_eq!(out.evaluations, 20);
    }

    #[test]
    fn empty_member_list_is_harmless() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = PortfolioSearch::new(1)
            .with_members(Vec::new())
            .search(&space, 10, &mut f);
        assert_eq!(out.evaluations, 0);
    }

    #[test]
    fn exhausts_tiny_spaces_without_spinning() {
        let space: locus_space::Space = vec![locus_space::ParamDef::new(
            "x",
            locus_space::ParamKind::Bool,
        )]
        .into_iter()
        .collect();
        let mut f = |_: &Point| Objective::Value(1.0);
        let out = PortfolioSearch::new(5).search(&space, 100, &mut f);
        assert_eq!(out.evaluations, 2, "only two distinct points exist");
    }
}
