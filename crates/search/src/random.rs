//! Uniform random search with de-duplication.

use locus_space::{Point, Space, SplitMix64};
use locus_trace::{kv, Tracer};

use crate::{Objective, SearchModule};

/// Uniform random sampling. Duplicate proposals are memoized by the
/// driver and do not consume budget; the module gives up after a
/// bounded number of consecutive duplicates (tiny spaces).
///
/// Proposals are a pure function of the seed — they never depend on
/// observed objectives — so a batched (parallel) run visits exactly the
/// same point stream as a sequential one.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    seed: u64,
    rng: SplitMix64,
    stale: usize,
    stale_limit: usize,
    tracer: Tracer,
}

impl RandomSearch {
    /// Creates a random search with a deterministic seed.
    pub fn new(seed: u64) -> RandomSearch {
        RandomSearch {
            seed,
            rng: SplitMix64::new(seed),
            stale: 0,
            stale_limit: 64,
            tracer: Tracer::disabled(),
        }
    }
}

impl Default for RandomSearch {
    fn default() -> RandomSearch {
        RandomSearch::new(0x10c05)
    }
}

impl SearchModule for RandomSearch {
    fn name(&self) -> &str {
        "random"
    }

    fn begin(&mut self, _space: &Space, budget: usize) {
        self.rng = SplitMix64::new(self.seed);
        self.stale = 0;
        self.stale_limit = budget.saturating_mul(4).max(64);
        let (seed, stale_limit) = (self.seed, self.stale_limit);
        self.tracer.instant("search", "random-plan", || {
            vec![
                kv("seed", seed),
                kv("budget", budget as u64),
                kv("stale_limit", stale_limit as u64),
            ]
        });
    }

    fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    fn propose(&mut self, space: &Space) -> Option<Point> {
        if self.stale >= self.stale_limit {
            return None;
        }
        Some(space.random_point(&mut self.rng))
    }

    fn observe(&mut self, _point: &Point, _objective: Objective, fresh: bool) {
        if fresh {
            self.stale = 0;
        } else {
            self.stale += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use locus_space::Space;

    #[test]
    fn respects_budget_and_finds_something() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = RandomSearch::new(1).search(&space, 100, &mut f);
        assert_eq!(out.evaluations, 100);
        assert!(out.best.is_some());
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let space = quadratic_space();
        let mut f1 = quadratic_objective;
        let mut f2 = quadratic_objective;
        let a = RandomSearch::new(9).search(&space, 50, &mut f1);
        let b = RandomSearch::new(9).search(&space, 50, &mut f2);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn terminates_on_tiny_spaces() {
        let space: Space = vec![locus_space::ParamDef::new(
            "x",
            locus_space::ParamKind::Bool,
        )]
        .into_iter()
        .collect();
        let mut f = |_: &Point| Objective::Value(1.0);
        let out = RandomSearch::new(2).search(&space, 100, &mut f);
        assert_eq!(out.evaluations, 2, "only two distinct points exist");
    }

    #[test]
    fn begin_resets_the_stream() {
        let space = quadratic_space();
        let mut m = RandomSearch::new(6);
        m.begin(&space, 10);
        let first: Vec<_> = (0..4).filter_map(|_| m.propose(&space)).collect();
        m.begin(&space, 10);
        let again: Vec<_> = (0..4).filter_map(|_| m.propose(&space)).collect();
        assert_eq!(first, again);
    }
}
