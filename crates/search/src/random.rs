//! Uniform random search with de-duplication.

use locus_space::{Point, Space};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Evaluator, Objective, SearchModule, SearchOutcome};

/// Uniform random sampling. Duplicate proposals are memoized and do not
/// consume budget; the module gives up after a bounded number of
/// consecutive duplicates (tiny spaces).
#[derive(Debug, Clone)]
pub struct RandomSearch {
    seed: u64,
}

impl RandomSearch {
    /// Creates a random search with a deterministic seed.
    pub fn new(seed: u64) -> RandomSearch {
        RandomSearch { seed }
    }
}

impl Default for RandomSearch {
    fn default() -> RandomSearch {
        RandomSearch::new(0x10c05)
    }
}

impl SearchModule for RandomSearch {
    fn name(&self) -> &str {
        "random"
    }

    fn search(
        &mut self,
        space: &Space,
        budget: usize,
        evaluate: &mut dyn FnMut(&Point) -> Objective,
    ) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut eval = Evaluator::new(budget, evaluate);
        let mut stale = 0usize;
        while !eval.done() && stale < budget.saturating_mul(4).max(64) {
            let point = space.random_point(&mut rng);
            let (_, fresh) = eval.eval(&point);
            if fresh {
                stale = 0;
            } else {
                stale += 1;
            }
        }
        eval.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn respects_budget_and_finds_something() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = RandomSearch::new(1).search(&space, 100, &mut f);
        assert_eq!(out.evaluations, 100);
        assert!(out.best.is_some());
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let space = quadratic_space();
        let mut f1 = quadratic_objective;
        let mut f2 = quadratic_objective;
        let a = RandomSearch::new(9).search(&space, 50, &mut f1);
        let b = RandomSearch::new(9).search(&space, 50, &mut f2);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn terminates_on_tiny_spaces() {
        let space: Space = vec![locus_space::ParamDef::new(
            "x",
            locus_space::ParamKind::Bool,
        )]
        .into_iter()
        .collect();
        let mut f = |_: &Point| Objective::Value(1.0);
        let out = RandomSearch::new(2).search(&space, 100, &mut f);
        assert_eq!(out.evaluations, 2, "only two distinct points exist");
    }
}
