//! Search modules for traversing Locus optimization spaces.
//!
//! The paper integrates OpenTuner and Hyperopt through a three-function
//! interface (Sec. IV-B): convert the space, run the search, convert
//! chosen points back. This crate provides the same contract natively:
//!
//! * [`ExhaustiveSearch`] — enumerates the space (stratified when the
//!   budget is smaller than the space);
//! * [`RandomSearch`] — uniform sampling with de-duplication;
//! * [`BanditTuner`] — the OpenTuner substitute: an ensemble of search
//!   techniques (greedy mutation, differential evolution, hill climbing,
//!   random restarts) arbitrated by a sliding-window AUC bandit, with
//!   memoization of already-assessed variants (the behaviour the paper
//!   credits for OpenTuner finding the best variant faster);
//! * [`AnnealTuner`] — the Hyperopt substitute: simulated annealing with
//!   random restarts;
//! * [`PortfolioSearch`] — the paper's Sec. VII future work implemented:
//!   several modules combined in one run, sharing a memo table and a
//!   best-so-far, with budget shifting toward whichever module recently
//!   improved the result.
//!
//! Every module implements [`SearchModule`]: it proposes points, the
//! caller evaluates them (build + run + measure in the full system) and
//! feeds back an [`Objective`]; lower is better. Points may be rejected
//! as [`Objective::Invalid`] — e.g. when a dependent-range constraint
//! such as `tileI_2 <= tileI` fails (Sec. IV-B.1) — without counting as
//! useful evaluations.

#![warn(missing_docs)]

pub mod anneal;
pub mod bandit;
pub mod exhaustive;
pub mod portfolio;
pub mod random;

pub use anneal::AnnealTuner;
pub use bandit::BanditTuner;
pub use exhaustive::ExhaustiveSearch;
pub use portfolio::PortfolioSearch;
pub use random::RandomSearch;

use locus_space::{Point, Space};

/// The outcome of evaluating one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// A valid measurement; lower is better (e.g. milliseconds).
    Value(f64),
    /// The point violates a constraint (dependent ranges) — skipped.
    Invalid,
    /// The variant failed to build or run; treated as very bad but
    /// counted, mirroring a crashed empirical evaluation.
    Error,
}

impl Objective {
    /// The measured value, if any.
    pub fn value(self) -> Option<f64> {
        match self {
            Objective::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// Result of a search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Best point found and its objective, if any valid point was seen.
    pub best: Option<(Point, f64)>,
    /// Number of *distinct, valid-or-error* evaluations performed.
    pub evaluations: usize,
    /// Number of proposals rejected as invalid.
    pub invalid: usize,
    /// Number of duplicate proposals skipped via memoization.
    pub duplicates: usize,
    /// Best-so-far trajectory: `(evaluation index, objective)` at every
    /// improvement.
    pub history: Vec<(usize, f64)>,
}

impl SearchOutcome {
    fn new() -> SearchOutcome {
        SearchOutcome {
            best: None,
            evaluations: 0,
            invalid: 0,
            duplicates: 0,
            history: Vec::new(),
        }
    }
}

/// A search module: traverses a [`Space`], calling `evaluate` on chosen
/// points, until `budget` evaluations have been spent or the module
/// decides it is done.
pub trait SearchModule {
    /// A short human-readable name ("opentuner-like bandit", ...).
    fn name(&self) -> &str;

    /// Runs the search.
    fn search(
        &mut self,
        space: &Space,
        budget: usize,
        evaluate: &mut dyn FnMut(&Point) -> Objective,
    ) -> SearchOutcome;
}

/// Shared evaluation bookkeeping used by the concrete modules: dedup,
/// best tracking, history recording.
pub(crate) struct Evaluator<'a> {
    evaluate: &'a mut dyn FnMut(&Point) -> Objective,
    seen: std::collections::HashMap<String, Objective>,
    outcome: SearchOutcome,
    budget: usize,
}

impl<'a> Evaluator<'a> {
    pub(crate) fn new(
        budget: usize,
        evaluate: &'a mut dyn FnMut(&Point) -> Objective,
    ) -> Evaluator<'a> {
        Evaluator {
            evaluate,
            seen: std::collections::HashMap::new(),
            outcome: SearchOutcome::new(),
            budget,
        }
    }

    /// Whether the budget is exhausted.
    pub(crate) fn done(&self) -> bool {
        self.outcome.evaluations >= self.budget
    }

    /// Evaluates a point with memoization. Returns the objective and
    /// whether this was a *fresh* evaluation.
    pub(crate) fn eval(&mut self, point: &Point) -> (Objective, bool) {
        let key = point.dedup_key();
        if let Some(cached) = self.seen.get(&key) {
            self.outcome.duplicates += 1;
            return (*cached, false);
        }
        let objective = (self.evaluate)(point);
        self.seen.insert(key, objective);
        match objective {
            Objective::Invalid => {
                self.outcome.invalid += 1;
            }
            Objective::Error => {
                self.outcome.evaluations += 1;
            }
            Objective::Value(v) => {
                self.outcome.evaluations += 1;
                let improved = self
                    .outcome
                    .best
                    .as_ref()
                    .is_none_or(|(_, best)| v < *best);
                if improved {
                    self.outcome.best = Some((point.clone(), v));
                    self.outcome
                        .history
                        .push((self.outcome.evaluations, v));
                }
            }
        }
        (objective, true)
    }

    /// Current best objective value.
    pub(crate) fn best_value(&self) -> Option<f64> {
        self.outcome.best.as_ref().map(|(_, v)| *v)
    }

    /// Current best point.
    pub(crate) fn best_point(&self) -> Option<&Point> {
        self.outcome.best.as_ref().map(|(p, _)| p)
    }

    pub(crate) fn finish(self) -> SearchOutcome {
        self.outcome
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use locus_space::{ParamDef, ParamKind, ParamValue, Point, Space};

    use crate::Objective;

    /// A 3-parameter space with a smooth optimum at
    /// (tile = 32, choice = 1, n = 10).
    pub fn quadratic_space() -> Space {
        vec![
            ParamDef::new("tile", ParamKind::PowerOfTwo { min: 2, max: 512 }),
            ParamDef::new("alg", ParamKind::Enum(vec!["a".into(), "b".into()])),
            ParamDef::new("n", ParamKind::Integer { min: 1, max: 32 }),
        ]
        .into_iter()
        .collect()
    }

    pub fn quadratic_objective(p: &Point) -> Objective {
        let tile = match p.get("tile") {
            Some(ParamValue::Int(v)) => *v as f64,
            _ => return Objective::Error,
        };
        let alg = match p.get("alg") {
            Some(ParamValue::Choice(c)) => *c as f64,
            _ => return Objective::Error,
        };
        let n = match p.get("n") {
            Some(ParamValue::Int(v)) => *v as f64,
            _ => return Objective::Error,
        };
        let score = (tile.log2() - 5.0).powi(2) + (1.0 - alg) * 4.0 + (n - 10.0).powi(2) * 0.1;
        Objective::Value(score)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn evaluator_dedups_and_tracks_best() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let mut eval = Evaluator::new(10, &mut f);
        let p = space.point_at(0);
        let (_, fresh1) = eval.eval(&p);
        let (_, fresh2) = eval.eval(&p);
        assert!(fresh1);
        assert!(!fresh2);
        let out = eval.finish();
        assert_eq!(out.evaluations, 1);
        assert_eq!(out.duplicates, 1);
        assert!(out.best.is_some());
    }

    #[test]
    fn invalid_points_do_not_consume_budget() {
        let space = quadratic_space();
        let mut f = |_: &Point| Objective::Invalid;
        let mut eval = Evaluator::new(5, &mut f);
        for i in 0..5 {
            eval.eval(&space.point_at(i));
        }
        let out = eval.finish();
        assert_eq!(out.evaluations, 0);
        assert_eq!(out.invalid, 5);
        assert!(out.best.is_none());
    }

    #[test]
    fn history_is_monotonically_improving() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let mut eval = Evaluator::new(100, &mut f);
        for i in 0..60 {
            eval.eval(&space.point_at(i * 7 % space.size()));
        }
        let out = eval.finish();
        for w in out.history.windows(2) {
            assert!(w[1].1 < w[0].1);
            assert!(w[1].0 > w[0].0);
        }
    }
}
