//! Search modules for traversing Locus optimization spaces.
//!
//! The paper integrates OpenTuner and Hyperopt through a three-function
//! interface (Sec. IV-B): convert the space, run the search, convert
//! chosen points back. This crate provides the same contract natively:
//!
//! * [`ExhaustiveSearch`] — enumerates the space (stratified when the
//!   budget is smaller than the space);
//! * [`RandomSearch`] — uniform sampling with de-duplication;
//! * [`BanditTuner`] — the OpenTuner substitute: an ensemble of search
//!   techniques (greedy mutation, differential evolution, hill climbing,
//!   random restarts) arbitrated by a sliding-window AUC bandit, with
//!   memoization of already-assessed variants (the behaviour the paper
//!   credits for OpenTuner finding the best variant faster);
//! * [`AnnealTuner`] — the Hyperopt substitute: simulated annealing with
//!   random restarts;
//! * [`PortfolioSearch`] — the paper's Sec. VII future work implemented:
//!   several modules combined in one run, sharing a memo table and a
//!   best-so-far, with budget shifting toward whichever module recently
//!   improved the result.
//!
//! # The ask/tell batch protocol
//!
//! Every module implements [`SearchModule`] as an *ask/tell* state
//! machine: [`SearchModule::begin`] resets it for a space and budget,
//! [`SearchModule::propose_batch`] asks for up to `k` candidate points,
//! and [`SearchModule::observe`] tells it the [`Objective`] of each
//! proposal, in proposal order. The driver — sequential
//! ([`SearchModule::search`], the default implementation, which drives
//! batches of one) or parallel (`LocusSystem::tune_parallel` in the
//! core crate, which fans a batch out over a worker pool behind a
//! shared memo cache) — owns evaluation, de-duplication, best-so-far
//! tracking and budget accounting through a [`Bookkeeper`].
//!
//! Because a `Bookkeeper` consumes results strictly in proposal order,
//! any two drivers that feed the same proposal stream produce
//! bit-identical [`SearchOutcome`]s; for modules whose proposals do not
//! depend on observations (exhaustive enumeration, seeded random
//! sampling) the parallel driver is therefore exactly equivalent to the
//! sequential one, regardless of worker count.
//!
//! Points may be rejected as [`Objective::Invalid`] — e.g. when a
//! dependent-range constraint such as `tileI_2 <= tileI` fails
//! (Sec. IV-B.1) — without counting as useful evaluations.

#![warn(missing_docs)]

pub mod anneal;
pub mod bandit;
pub mod exhaustive;
pub mod mcts;
pub mod portfolio;
pub mod random;
pub mod sampler;

pub use anneal::AnnealTuner;
pub use bandit::BanditTuner;
pub use exhaustive::ExhaustiveSearch;
pub use mcts::MctsTuner;
pub use portfolio::{Member, PortfolioSearch};
pub use random::RandomSearch;
pub use sampler::TraceSampler;

/// The deterministic in-tree PRNG all modules draw from, re-exported so
/// downstream crates (and tests) need not depend on `locus-space`
/// directly for it.
pub use locus_space::rng;

use locus_space::{Point, Space};

/// The observation block size adaptive modules synchronize their state
/// updates on: [`MctsTuner`] and [`TraceSampler`] buffer incoming
/// [`SearchModule::observe`] calls and integrate them into their
/// sampling state only once a full block has arrived.
///
/// The parallel driver proposes in batches of exactly this size (its
/// `PARALLEL_BATCH` is defined as this constant), so a module that
/// updates on block boundaries sees the *same* integrated state before
/// every proposal whether it is driven one-point-at-a-time (the
/// sequential default [`SearchModule::search`]) or a whole batch ahead
/// of its observations — which is what makes those modules bit-identical
/// under both drivers at any worker count.
pub const OBSERVATION_BLOCK: usize = 16;

/// A legality oracle a driver can attach to a module via
/// [`SearchModule::attach_pruner`]: returns `true` when the point
/// builds into a legal variant (in the core driver this runs the
/// optimization program, and with it `verify::legal` and the dependent
/// range checks). Modules that structure the space — the MCTS tree, the
/// trace sampler — consult it at expansion/sampling time so illegal
/// prefixes are pruned before they are ever proposed, let alone
/// simulated.
pub type LegalityOracle = std::sync::Arc<dyn Fn(&Point) -> bool + Send + Sync>;

/// The outcome of evaluating one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// A valid measurement; lower is better (e.g. milliseconds).
    Value(f64),
    /// The point violates a constraint (dependent ranges) — skipped.
    Invalid,
    /// The variant failed to build or run; treated as very bad but
    /// counted, mirroring a crashed empirical evaluation.
    Error,
}

impl Objective {
    /// The measured value, if any.
    pub fn value(self) -> Option<f64> {
        match self {
            Objective::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// Result of a search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Best point found and its objective, if any valid point was seen.
    pub best: Option<(Point, f64)>,
    /// Number of *distinct, valid-or-error* evaluations performed.
    pub evaluations: usize,
    /// Number of proposals rejected as invalid.
    pub invalid: usize,
    /// Number of duplicate proposals skipped via memoization.
    pub duplicates: usize,
    /// Best-so-far trajectory: `(evaluation index, objective)` at every
    /// improvement.
    pub history: Vec<(usize, f64)>,
}

impl SearchOutcome {
    fn new() -> SearchOutcome {
        SearchOutcome {
            best: None,
            evaluations: 0,
            invalid: 0,
            duplicates: 0,
            history: Vec::new(),
        }
    }
}

/// A search module: an ask/tell state machine over a [`Space`].
///
/// Drivers call [`SearchModule::begin`] once, then alternate
/// [`SearchModule::propose_batch`] and (for every proposal, in proposal
/// order) [`SearchModule::observe`] until the budget is spent or the
/// module returns an empty batch. Modules own their termination
/// heuristics (staleness limits on tiny spaces); drivers own budget,
/// memoization and best-so-far tracking.
pub trait SearchModule {
    /// A short human-readable name ("opentuner-like bandit", ...).
    fn name(&self) -> &str;

    /// Resets the module for a fresh run over `space` with `budget`
    /// evaluations available.
    fn begin(&mut self, space: &Space, budget: usize);

    /// Feeds prior `(point, objective)` observations — e.g. the top-k
    /// results a persistent tuning store recorded in earlier sessions —
    /// into the module *before* the first proposal, warm-starting the
    /// search without consuming any of this run's budget.
    ///
    /// Drivers call this between [`SearchModule::begin`] and the first
    /// [`SearchModule::propose_batch`], with `prior` sorted best-first
    /// (ties broken by canonical key, so the call is deterministic for a
    /// given store state). The default implementation ignores the prior
    /// — correct for modules whose proposal stream must not depend on
    /// observations (exhaustive, seeded random); adaptive modules
    /// ([`BanditTuner`], [`AnnealTuner`]) override it to prime their
    /// internal state.
    fn seed_observations(&mut self, space: &Space, prior: &[(Point, f64)]) {
        let _ = (space, prior);
    }

    /// Attaches a [`locus_trace::Tracer`] the module emits
    /// `search`-category decision events into — the bandit's chosen
    /// arm, the annealer's temperature and acceptance, the portfolio's
    /// budget shares. Tracing is *observation-only*: a module must
    /// never let the tracer influence its proposal stream (traced and
    /// untraced runs stay bit-identical). The default implementation
    /// ignores the tracer; every built-in module overrides it.
    fn attach_tracer(&mut self, tracer: &locus_trace::Tracer) {
        let _ = tracer;
    }

    /// Attaches a [`LegalityOracle`] the module may consult *before*
    /// proposing a candidate, pruning points a driver's static verifier
    /// would refuse anyway. Purely an optimization hook: a module must
    /// behave correctly without one (illegal proposals then come back
    /// as [`Objective::Invalid`]), and drivers attach the same oracle
    /// on every path so sequential/parallel determinism is preserved.
    /// The default implementation ignores it; the tree/trace modules
    /// ([`MctsTuner`], [`TraceSampler`]) override it.
    fn attach_pruner(&mut self, oracle: &LegalityOracle) {
        let _ = oracle;
    }

    /// Proposes the next point, or `None` when the module has nothing
    /// left to try (space exhausted, staleness limit hit).
    fn propose(&mut self, space: &Space) -> Option<Point>;

    /// Proposes up to `k` points for (possibly parallel) evaluation.
    ///
    /// The default implementation asks [`SearchModule::propose`] `k`
    /// times; modules with batch-aware strategies (technique fan-out,
    /// per-member shares) override it.
    fn propose_batch(&mut self, space: &Space, k: usize) -> Vec<Point> {
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            match self.propose(space) {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }

    /// Feeds back the objective of a proposed point. `fresh` is `false`
    /// when the driver's memo table already held the point (a duplicate
    /// proposal that consumed no evaluation budget).
    fn observe(&mut self, point: &Point, objective: Objective, fresh: bool);

    /// Runs the search sequentially: the classic evaluate-one-point-at-
    /// a-time workflow of Fig. 2 (bottom), implemented as the batch
    /// protocol with `k = 1`.
    fn search(
        &mut self,
        space: &Space,
        budget: usize,
        evaluate: &mut dyn FnMut(&Point) -> Objective,
    ) -> SearchOutcome {
        self.begin(space, budget);
        let mut book = Bookkeeper::new(budget);
        while !book.done() {
            let batch = self.propose_batch(space, 1);
            if batch.is_empty() {
                break;
            }
            for point in &batch {
                let (objective, fresh) = book.record(point, |p| evaluate(p));
                self.observe(point, objective, fresh);
            }
        }
        book.finish()
    }
}

/// Driver-side evaluation bookkeeping shared by the sequential default
/// driver and the parallel engine in the core crate: memoized dedup,
/// budget accounting, best tracking and history recording.
///
/// The bookkeeper consumes proposals **in proposal order**; equal
/// objective values never displace an earlier best (ties break toward
/// the earliest proposal, whose canonical key the driver ordering makes
/// stable), which is what makes sequential and batched runs of
/// observation-independent modules bit-identical.
#[derive(Debug)]
pub struct Bookkeeper {
    seen: std::collections::HashMap<String, Objective>,
    outcome: SearchOutcome,
    budget: usize,
}

impl Bookkeeper {
    /// Creates a bookkeeper for a run of `budget` evaluations.
    pub fn new(budget: usize) -> Bookkeeper {
        Bookkeeper {
            seen: std::collections::HashMap::new(),
            outcome: SearchOutcome::new(),
            budget,
        }
    }

    /// Whether the budget is exhausted.
    pub fn done(&self) -> bool {
        self.outcome.evaluations >= self.budget
    }

    /// Records a point, calling `evaluate` only when the point was not
    /// seen before in this run. Returns the objective and whether this
    /// was a *fresh* evaluation.
    pub fn record(
        &mut self,
        point: &Point,
        evaluate: impl FnOnce(&Point) -> Objective,
    ) -> (Objective, bool) {
        let key = point.canonical_key();
        if let Some(cached) = self.seen.get(&key) {
            self.outcome.duplicates += 1;
            return (*cached, false);
        }
        let objective = evaluate(point);
        self.seen.insert(key, objective);
        match objective {
            Objective::Invalid => {
                self.outcome.invalid += 1;
            }
            Objective::Error => {
                self.outcome.evaluations += 1;
            }
            // A non-finite measurement (a NaN/infinite objective from a
            // broken cost model or evaluator) counts like an errored
            // evaluation: it spends budget but can never become the
            // best, so `SearchOutcome::best` stays finite.
            Objective::Value(v) if !v.is_finite() => {
                self.outcome.evaluations += 1;
            }
            Objective::Value(v) => {
                self.outcome.evaluations += 1;
                let improved = self.outcome.best.as_ref().is_none_or(|(_, best)| v < *best);
                if improved {
                    self.outcome.best = Some((point.clone(), v));
                    self.outcome.history.push((self.outcome.evaluations, v));
                }
            }
        }
        (objective, true)
    }

    /// Current best objective value.
    pub fn best_value(&self) -> Option<f64> {
        self.outcome.best.as_ref().map(|(_, v)| *v)
    }

    /// Current best point.
    pub fn best_point(&self) -> Option<&Point> {
        self.outcome.best.as_ref().map(|(p, _)| p)
    }

    /// Finishes the run and returns the outcome.
    pub fn finish(self) -> SearchOutcome {
        self.outcome
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use locus_space::{ParamDef, ParamKind, ParamValue, Point, Space};

    use crate::Objective;

    /// A 3-parameter space with a smooth optimum at
    /// (tile = 32, choice = 1, n = 10).
    pub fn quadratic_space() -> Space {
        vec![
            ParamDef::new("tile", ParamKind::PowerOfTwo { min: 2, max: 512 }),
            ParamDef::new("alg", ParamKind::Enum(vec!["a".into(), "b".into()])),
            ParamDef::new("n", ParamKind::Integer { min: 1, max: 32 }),
        ]
        .into_iter()
        .collect()
    }

    pub fn quadratic_objective(p: &Point) -> Objective {
        let tile = match p.get("tile") {
            Some(ParamValue::Int(v)) => *v as f64,
            _ => return Objective::Error,
        };
        let alg = match p.get("alg") {
            Some(ParamValue::Choice(c)) => *c as f64,
            _ => return Objective::Error,
        };
        let n = match p.get("n") {
            Some(ParamValue::Int(v)) => *v as f64,
            _ => return Objective::Error,
        };
        let score = (tile.log2() - 5.0).powi(2) + (1.0 - alg) * 4.0 + (n - 10.0).powi(2) * 0.1;
        Objective::Value(score)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn bookkeeper_dedups_and_tracks_best() {
        let space = quadratic_space();
        let mut book = Bookkeeper::new(10);
        let p = space.point_at(0);
        let (_, fresh1) = book.record(&p, quadratic_objective);
        let (_, fresh2) = book.record(&p, quadratic_objective);
        assert!(fresh1);
        assert!(!fresh2);
        let out = book.finish();
        assert_eq!(out.evaluations, 1);
        assert_eq!(out.duplicates, 1);
        assert!(out.best.is_some());
    }

    #[test]
    fn invalid_points_do_not_consume_budget() {
        let space = quadratic_space();
        let mut book = Bookkeeper::new(5);
        for i in 0..5 {
            book.record(&space.point_at(i), |_| Objective::Invalid);
        }
        let out = book.finish();
        assert_eq!(out.evaluations, 0);
        assert_eq!(out.invalid, 5);
        assert!(out.best.is_none());
    }

    #[test]
    fn history_is_monotonically_improving() {
        let space = quadratic_space();
        let mut book = Bookkeeper::new(100);
        for i in 0..60 {
            book.record(&space.point_at(i * 7 % space.size()), quadratic_objective);
        }
        let out = book.finish();
        for w in out.history.windows(2) {
            assert!(w[1].1 < w[0].1);
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn default_batch_proposals_match_repeated_single_proposals() {
        let space = quadratic_space();
        let mut a = RandomSearch::new(17);
        let mut b = RandomSearch::new(17);
        a.begin(&space, 64);
        b.begin(&space, 64);
        let batch = a.propose_batch(&space, 8);
        let singles: Vec<_> = (0..8).filter_map(|_| b.propose(&space)).collect();
        assert_eq!(batch, singles);
    }
}
