//! The Hyperopt-substitute search module: simulated annealing.
//!
//! Hyperopt's default non-TPE algorithm is annealing over the prior;
//! this module mirrors that behaviour: propose a neighbour of the
//! current point (or a fresh prior sample with a decaying probability),
//! accept by the Metropolis criterion under a geometric temperature
//! schedule.

use locus_space::{Point, Space};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Evaluator, Objective, SearchModule, SearchOutcome};

/// The Hyperopt-like annealer.
#[derive(Debug, Clone)]
pub struct AnnealTuner {
    seed: u64,
    /// Initial acceptance temperature relative to the first objective.
    t0: f64,
    /// Geometric cooling rate per evaluation.
    cooling: f64,
}

impl AnnealTuner {
    /// Creates an annealer with a deterministic seed and default
    /// schedule.
    pub fn new(seed: u64) -> AnnealTuner {
        AnnealTuner {
            seed,
            t0: 0.3,
            cooling: 0.97,
        }
    }

    /// Overrides the temperature schedule.
    pub fn with_schedule(mut self, t0: f64, cooling: f64) -> AnnealTuner {
        self.t0 = t0;
        self.cooling = cooling;
        self
    }
}

impl Default for AnnealTuner {
    fn default() -> AnnealTuner {
        AnnealTuner::new(0x0a11)
    }
}

impl SearchModule for AnnealTuner {
    fn name(&self) -> &str {
        "annealing (hyperopt-like)"
    }

    fn search(
        &mut self,
        space: &Space,
        budget: usize,
        evaluate: &mut dyn FnMut(&Point) -> Objective,
    ) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut eval = Evaluator::new(budget, evaluate);

        // Initial point: first valid random sample.
        let mut current: Option<(Point, f64)> = None;
        let mut attempts = 0;
        while current.is_none() && attempts < budget.max(16) * 4 && !eval.done() {
            attempts += 1;
            let p = space.random_point(&mut rng);
            if let (Objective::Value(v), _) = eval.eval(&p) {
                current = Some((p, v));
            }
        }
        let Some((mut cur_point, mut cur_value)) = current else {
            return eval.finish();
        };

        let mut temperature = self.t0 * cur_value.abs().max(1e-9);
        let mut stale = 0usize;
        while !eval.done() && stale < budget.saturating_mul(8).max(256) {
            // Restart probability decays as the search matures.
            let restart_p = 0.25 * temperature / (self.t0 * cur_value.abs().max(1e-9) + 1e-12);
            let proposal = if rng.random_bool(restart_p.clamp(0.02, 0.5)) {
                space.random_point(&mut rng)
            } else {
                space.mutate(&cur_point, 1, &mut rng)
            };
            let (obj, fresh) = eval.eval(&proposal);
            if !fresh {
                stale += 1;
                continue;
            }
            stale = 0;
            if let Objective::Value(v) = obj {
                let accept = v < cur_value || {
                    let delta = v - cur_value;
                    rng.random_bool((-delta / temperature.max(1e-12)).exp().clamp(0.0, 1.0))
                };
                if accept {
                    cur_point = proposal;
                    cur_value = v;
                }
            }
            temperature *= self.cooling;
        }
        eval.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn converges_on_smooth_landscape() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = AnnealTuner::new(4).search(&space, 200, &mut f);
        let (_, best) = out.best.unwrap();
        assert!(best < 1.0, "anneal best {best}");
    }

    #[test]
    fn deterministic_per_seed() {
        let space = quadratic_space();
        let mut f1 = quadratic_objective;
        let mut f2 = quadratic_objective;
        let a = AnnealTuner::new(8).search(&space, 60, &mut f1);
        let b = AnnealTuner::new(8).search(&space, 60, &mut f2);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn handles_spaces_with_only_invalid_points() {
        let space = quadratic_space();
        let mut f = |_: &Point| Objective::Invalid;
        let out = AnnealTuner::new(2).search(&space, 10, &mut f);
        assert!(out.best.is_none());
    }

    #[test]
    fn respects_budget() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = AnnealTuner::new(3).search(&space, 25, &mut f);
        assert_eq!(out.evaluations, 25);
    }

    #[test]
    fn custom_schedule_is_applied() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = AnnealTuner::new(5)
            .with_schedule(1.0, 0.9)
            .search(&space, 100, &mut f);
        assert!(out.best.is_some());
    }
}
