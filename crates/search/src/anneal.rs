//! The Hyperopt-substitute search module: simulated annealing.
//!
//! Hyperopt's default non-TPE algorithm is annealing over the prior;
//! this module mirrors that behaviour: propose a neighbour of the
//! current point (or a fresh prior sample with a decaying probability),
//! accept by the Metropolis criterion under a geometric temperature
//! schedule.
//!
//! As an ask/tell state machine the annealer walks from whatever point
//! it last accepted; inside a batch every proposal is a neighbour of
//! the same walking point (acceptances only apply once the batch is
//! observed), which is the standard "speculative neighbourhood"
//! batching of annealing. Runs are deterministic for a fixed seed and
//! batch size, regardless of how many workers evaluate the batch.

use locus_space::{Point, Space, SplitMix64};
use locus_trace::{kv, Tracer};

use crate::{Objective, SearchModule};

/// The Hyperopt-like annealer.
#[derive(Debug, Clone)]
pub struct AnnealTuner {
    seed: u64,
    /// Initial acceptance temperature relative to the first objective.
    t0: f64,
    /// Geometric cooling rate per evaluation.
    cooling: f64,
    rng: SplitMix64,
    /// The walking point and its objective, once a valid sample landed.
    current: Option<(Point, f64)>,
    temperature: f64,
    init_attempts: usize,
    init_limit: usize,
    stale: usize,
    stale_limit: usize,
    /// Keys the walk must not propose again: warm-start priors (already
    /// measured) and points refused as `Invalid`.
    avoid: std::collections::HashSet<String>,
    tracer: Tracer,
}

impl AnnealTuner {
    /// Creates an annealer with a deterministic seed and default
    /// schedule.
    pub fn new(seed: u64) -> AnnealTuner {
        AnnealTuner {
            seed,
            t0: 0.3,
            cooling: 0.97,
            rng: SplitMix64::new(seed),
            current: None,
            temperature: 0.0,
            init_attempts: 0,
            init_limit: 64,
            stale: 0,
            stale_limit: 256,
            avoid: std::collections::HashSet::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Overrides the temperature schedule.
    pub fn with_schedule(mut self, t0: f64, cooling: f64) -> AnnealTuner {
        self.t0 = t0;
        self.cooling = cooling;
        self
    }
}

impl Default for AnnealTuner {
    fn default() -> AnnealTuner {
        AnnealTuner::new(0x0a11)
    }
}

impl SearchModule for AnnealTuner {
    fn name(&self) -> &str {
        "annealing (hyperopt-like)"
    }

    fn begin(&mut self, _space: &Space, budget: usize) {
        self.rng = SplitMix64::new(self.seed);
        self.current = None;
        self.temperature = 0.0;
        self.init_attempts = 0;
        self.init_limit = budget.max(16).saturating_mul(4);
        self.stale = 0;
        self.stale_limit = budget.saturating_mul(8).max(256);
        self.avoid.clear();
    }

    fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Warm start: the walk begins from the best prior point instead of
    /// a cold prior sample, with the temperature initialized from that
    /// point's objective — the annealer resumes near where the last
    /// session's search left off.
    fn seed_observations(&mut self, _space: &Space, prior: &[(Point, f64)]) {
        let Some((point, value)) = prior.first() else {
            return;
        };
        self.current = Some((point.clone(), *value));
        self.temperature = self.t0 * value.abs().max(1e-9);
        // The walk resumes *from* the prior, it must not re-measure it.
        for (point, _) in prior {
            self.avoid.insert(point.canonical_key());
        }
    }

    fn propose(&mut self, space: &Space) -> Option<Point> {
        // Resample (boundedly) rather than re-propose a warm-start
        // prior or a point already refused as invalid.
        for _ in 0..16 {
            let candidate = match &self.current {
                // Initial phase: sample the prior until a valid point
                // lands.
                None => {
                    if self.init_attempts >= self.init_limit {
                        return None;
                    }
                    self.init_attempts += 1;
                    space.random_point(&mut self.rng)
                }
                Some((cur_point, cur_value)) => {
                    if self.stale >= self.stale_limit {
                        return None;
                    }
                    // Restart probability decays as the search matures.
                    let restart_p =
                        0.25 * self.temperature / (self.t0 * cur_value.abs().max(1e-9) + 1e-12);
                    if self.rng.chance(restart_p.clamp(0.02, 0.5)) {
                        space.random_point(&mut self.rng)
                    } else {
                        space.mutate(cur_point, 1, &mut self.rng)
                    }
                }
            };
            if !self.avoid.contains(&candidate.canonical_key()) {
                return Some(candidate);
            }
        }
        // Everything nearby is refused or already known: fall back to a
        // fresh prior sample rather than a known-bad point.
        Some(space.random_point(&mut self.rng))
    }

    fn observe(&mut self, point: &Point, objective: Objective, fresh: bool) {
        // A non-finite measurement must never become the walking point:
        // a NaN `current` poisons every subsequent acceptance test.
        let objective = match objective {
            Objective::Value(v) if !v.is_finite() => Objective::Error,
            o => o,
        };
        if matches!(objective, Objective::Invalid) {
            self.avoid.insert(point.canonical_key());
        }
        match &self.current {
            None => {
                if let Objective::Value(v) = objective {
                    self.current = Some((point.clone(), v));
                    self.temperature = self.t0 * v.abs().max(1e-9);
                }
            }
            Some((_, cur_value)) => {
                if !fresh {
                    self.stale += 1;
                    return;
                }
                self.stale = 0;
                if let Objective::Value(v) = objective {
                    let accept = v < *cur_value || {
                        let delta = v - cur_value;
                        self.rng
                            .chance((-delta / self.temperature.max(1e-12)).exp().clamp(0.0, 1.0))
                    };
                    if accept {
                        self.current = Some((point.clone(), v));
                    }
                    let temperature = self.temperature;
                    self.tracer.instant("search", "anneal-step", || {
                        vec![
                            kv("temperature", temperature),
                            kv("value", v),
                            kv("accepted", accept),
                        ]
                    });
                }
                self.temperature *= self.cooling;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn converges_on_smooth_landscape() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = AnnealTuner::new(4).search(&space, 200, &mut f);
        let (_, best) = out.best.unwrap();
        assert!(best < 1.0, "anneal best {best}");
    }

    #[test]
    fn deterministic_per_seed() {
        let space = quadratic_space();
        let mut f1 = quadratic_objective;
        let mut f2 = quadratic_objective;
        let a = AnnealTuner::new(8).search(&space, 60, &mut f1);
        let b = AnnealTuner::new(8).search(&space, 60, &mut f2);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn handles_spaces_with_only_invalid_points() {
        let space = quadratic_space();
        let mut f = |_: &Point| Objective::Invalid;
        let out = AnnealTuner::new(2).search(&space, 10, &mut f);
        assert!(out.best.is_none());
    }

    #[test]
    fn respects_budget() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = AnnealTuner::new(3).search(&space, 25, &mut f);
        assert_eq!(out.evaluations, 25);
    }

    #[test]
    fn custom_schedule_is_applied() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = AnnealTuner::new(5)
            .with_schedule(1.0, 0.9)
            .search(&space, 100, &mut f);
        assert!(out.best.is_some());
    }

    #[test]
    fn seeding_starts_the_walk_from_the_prior_best() {
        let space = quadratic_space();
        let mut m = AnnealTuner::new(6);
        m.begin(&space, 50);
        let prior_point = space.point_at(4);
        m.seed_observations(&space, &[(prior_point.clone(), 2.0)]);
        assert_eq!(
            m.current.as_ref().map(|(p, v)| (p.clone(), *v)),
            Some((prior_point, 2.0))
        );
        assert!(m.temperature > 0.0);
        // An empty prior leaves the cold-start path untouched.
        let mut cold = AnnealTuner::new(6);
        cold.begin(&space, 50);
        cold.seed_observations(&space, &[]);
        assert!(cold.current.is_none());
    }

    #[test]
    fn batch_runs_are_deterministic_for_a_seed() {
        let space = quadratic_space();
        let run = || {
            let mut m = AnnealTuner::new(12);
            m.begin(&space, 40);
            let mut book = crate::Bookkeeper::new(40);
            while !book.done() {
                let batch = m.propose_batch(&space, 8);
                if batch.is_empty() {
                    break;
                }
                for p in &batch {
                    let (obj, fresh) = book.record(p, quadratic_objective);
                    m.observe(p, obj, fresh);
                }
            }
            book.finish()
        };
        assert_eq!(run(), run());
    }
}
