//! Probabilistic-trace sampling over decision sites.
//!
//! Where [`crate::MctsTuner`] builds an explicit tree over the decision
//! sites of a [`Space`], [`TraceSampler`] treats a point as a *trace* —
//! one decision index per site — and learns an independent categorical
//! distribution per site, in the style of TVM MetaSchedule's trace
//! sampling and classic cross-entropy search:
//!
//! 1. sample a trace site-by-site from the current distributions
//!    (uniform before any evidence),
//! 2. observe objectives, keep the best `ELITE_K` traces seen so far,
//! 3. at every [`OBSERVATION_BLOCK`] boundary refit each site's
//!    distribution to the rank-weighted decisions of the elites.
//!
//! An exploration floor that *grows* with the number of refits mixes
//! uniform noise back in, so the sampler cannot collapse onto its
//! elites and stall: it starts fully exploiting warm-start evidence
//! (generation 0 after [`SearchModule::seed_observations`] samples the
//! elite trace exactly) and drifts toward broader sampling as the
//! fitted distributions concentrate.
//!
//! Like the MCTS module, observations integrate only at full block
//! boundaries (sequential and batch-parallel drives are bit-identical),
//! proposals are deduplicated against everything already proposed or
//! seeded, oracle-refused candidates are recorded and retried with
//! escalating exploration, and a dried-up sampler stays finished.

use std::collections::{BTreeMap, HashSet};

use locus_space::{Point, Space, SplitMix64};
use locus_trace::{kv, Tracer};

use crate::{LegalityOracle, Objective, SearchModule, OBSERVATION_BLOCK};

/// Elite traces kept for refitting.
const ELITE_K: usize = 8;

/// Sampling attempts per `propose` call before declaring the space dry.
const MAX_PROPOSE_TRIES: usize = 64;

/// Generative trace sampler with per-site categorical distributions
/// (see the module docs).
#[derive(Clone)]
pub struct TraceSampler {
    seed: u64,
    sync_block: usize,
    // Per-run state, reset by `begin`.
    rng: SplitMix64,
    arities: Vec<u128>,
    /// Per-site fitted distribution; an empty map means uniform.
    dists: Vec<BTreeMap<u128, f64>>,
    /// Best `(value, trace)` pairs seen, sorted ascending by value.
    elites: Vec<(f64, Vec<u128>)>,
    /// Canonical keys of every point proposed or seeded — own dedup.
    proposed: HashSet<String>,
    /// Traces of in-flight proposals, in proposal order.
    pending: std::collections::VecDeque<Vec<u128>>,
    /// Observed-but-unintegrated `(trace, objective)` pairs.
    buffer: Vec<(Vec<u128>, Objective)>,
    /// Completed refits; drives the exploration schedule.
    generation: u64,
    finished: bool,
    oracle: Option<LegalityOracle>,
    tracer: Tracer,
}

impl std::fmt::Debug for TraceSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSampler")
            .field("seed", &self.seed)
            .field("sites", &self.arities.len())
            .field("elites", &self.elites.len())
            .field("proposed", &self.proposed.len())
            .field("generation", &self.generation)
            .field("finished", &self.finished)
            .field("oracle", &self.oracle.is_some())
            .finish()
    }
}

impl TraceSampler {
    /// Creates a sampler.
    pub fn new(seed: u64) -> TraceSampler {
        TraceSampler {
            seed,
            sync_block: OBSERVATION_BLOCK,
            rng: SplitMix64::new(seed),
            arities: Vec::new(),
            dists: Vec::new(),
            elites: Vec::new(),
            proposed: HashSet::new(),
            pending: std::collections::VecDeque::new(),
            buffer: Vec::new(),
            generation: 0,
            finished: false,
            oracle: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Overrides the observation block size (default
    /// [`OBSERVATION_BLOCK`]); see [`crate::MctsTuner::with_sync_block`].
    pub fn with_sync_block(mut self, n: usize) -> TraceSampler {
        self.sync_block = n.max(1);
        self
    }

    /// Exploration rate at the current generation: no noise right after
    /// seeding (a degenerate single-elite prior reproduces its trace
    /// exactly), growing 5 points per refit up to one half.
    fn explore_rate(&self) -> f64 {
        (0.05 * self.generation as f64).min(0.5)
    }

    /// Samples one decision at `site`, mixing the fitted categorical
    /// with uniform noise at rate `explore`.
    fn sample_site(&mut self, site: usize, explore: f64) -> u128 {
        let cap = self.arities[site].min(u64::MAX as u128).max(1) as u64;
        if self.dists[site].is_empty() || self.rng.chance(explore) {
            return u128::from(self.rng.below(cap));
        }
        let mut roll = self.rng.next_f64();
        let mut last = 0u128;
        for (&value, &weight) in &self.dists[site] {
            last = value;
            roll -= weight;
            if roll <= 0.0 {
                return value;
            }
        }
        last
    }

    /// Samples one full trace from the current distributions (public so
    /// property tests can probe the generative model directly, without
    /// the propose-path dedup).
    pub fn sample_trace(&mut self) -> Vec<u128> {
        let explore = self.explore_rate();
        (0..self.arities.len())
            .map(|site| self.sample_site(site, explore))
            .collect()
    }

    /// The fitted per-site distributions; an empty map means uniform.
    pub fn site_distributions(&self) -> &[BTreeMap<u128, f64>] {
        &self.dists
    }

    /// Inserts one elite candidate, keeping the list sorted, deduped by
    /// trace, and truncated to [`ELITE_K`].
    fn push_elite(&mut self, value: f64, trace: Vec<u128>) {
        if !value.is_finite() || self.elites.iter().any(|(_, t)| *t == trace) {
            return;
        }
        let at = self
            .elites
            .partition_point(|(v, t)| (*v, t.as_slice()) < (value, trace.as_slice()));
        self.elites.insert(at, (value, trace));
        self.elites.truncate(ELITE_K);
    }

    /// Refits every site distribution to the rank-weighted elites.
    fn refit(&mut self) {
        if self.elites.is_empty() {
            return;
        }
        for (site, dist) in self.dists.iter_mut().enumerate() {
            dist.clear();
            let mut total = 0.0;
            for (rank, (_, trace)) in self.elites.iter().enumerate() {
                let w = 1.0 / (rank as f64 + 1.0);
                *dist.entry(trace[site]).or_insert(0.0) += w;
                total += w;
            }
            for weight in dist.values_mut() {
                *weight /= total;
            }
        }
    }

    /// Folds one observed block into the elites and refits. Uses no
    /// randomness, so integration timing cannot perturb proposals.
    fn integrate(&mut self) {
        let block = std::mem::take(&mut self.buffer);
        let count = block.len() as u64;
        for (trace, obj) in block {
            if let Objective::Value(v) = obj {
                if v.is_finite() {
                    self.push_elite(v, trace);
                }
            }
        }
        self.refit();
        self.generation += 1;
        let (generation, elites) = (self.generation, self.elites.len() as u64);
        self.tracer.instant("search", "sampler-fit", || {
            vec![
                kv("generation", generation),
                kv("block", count),
                kv("elites", elites),
            ]
        });
    }
}

impl Default for TraceSampler {
    fn default() -> TraceSampler {
        TraceSampler::new(0x7a5e)
    }
}

impl SearchModule for TraceSampler {
    fn name(&self) -> &str {
        "sampler (probabilistic trace sampling)"
    }

    fn begin(&mut self, space: &Space, _budget: usize) {
        self.rng = SplitMix64::new(self.seed);
        self.arities = space
            .decision_sites()
            .into_iter()
            .map(|s| s.arity)
            .collect();
        self.dists = vec![BTreeMap::new(); self.arities.len()];
        self.elites.clear();
        self.proposed.clear();
        self.pending.clear();
        self.buffer.clear();
        self.generation = 0;
        self.finished = false;
        let sites = self.arities.len();
        self.tracer.instant("search", "sampler-begin", || {
            vec![
                kv("sites", sites as u64),
                kv("size", format!("{}", space.size())),
            ]
        });
    }

    fn seed_observations(&mut self, space: &Space, prior: &[(Point, f64)]) {
        for (point, value) in prior {
            let Some(trace) = space.trace_of(point) else {
                continue;
            };
            self.proposed.insert(point.canonical_key());
            if let Some(snapped) = space.point_from_trace(&trace) {
                self.proposed.insert(snapped.canonical_key());
            }
            if value.is_finite() {
                self.push_elite(*value, trace);
            }
        }
        // Fit to the warm-start evidence but stay at generation 0: the
        // first samples exploit the store's elites with no noise.
        self.refit();
        let elites = self.elites.len() as u64;
        self.tracer
            .instant("search", "sampler-seed", || vec![kv("elites", elites)]);
    }

    fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    fn attach_pruner(&mut self, oracle: &LegalityOracle) {
        self.oracle = Some(std::sync::Arc::clone(oracle));
    }

    fn propose(&mut self, space: &Space) -> Option<Point> {
        if self.finished {
            return None;
        }
        if self.arities.is_empty() {
            let point = Point::new();
            if self.proposed.insert(point.canonical_key()) {
                self.pending.push_back(Vec::new());
                return Some(point);
            }
            self.finished = true;
            return None;
        }
        let base = self.explore_rate();
        for attempt in 0..MAX_PROPOSE_TRIES {
            // Escalate toward uniform sampling as collisions mount, so
            // concentrated distributions cannot dry the sampler out.
            let explore = (base + attempt as f64 * 0.2).min(1.0);
            let trace: Vec<u128> = (0..self.arities.len())
                .map(|site| self.sample_site(site, explore))
                .collect();
            let point = space
                .point_from_trace(&trace)
                .expect("sampled trace stays inside the space");
            let key = point.canonical_key();
            if self.proposed.contains(&key) {
                continue;
            }
            if let Some(oracle) = &self.oracle {
                if !oracle(&point) {
                    self.proposed.insert(key);
                    self.tracer.instant("search", "sampler-prune", || {
                        vec![kv("point", point.canonical_key())]
                    });
                    continue;
                }
            }
            self.proposed.insert(key);
            let generation = self.generation;
            self.pending.push_back(trace);
            self.tracer.instant("search", "sampler-propose", || {
                vec![
                    kv("generation", generation),
                    kv("attempt", attempt as u64),
                    kv("point", point.canonical_key()),
                ]
            });
            return Some(point);
        }
        self.finished = true;
        None
    }

    fn observe(&mut self, _point: &Point, objective: Objective, _fresh: bool) {
        let Some(trace) = self.pending.pop_front() else {
            return;
        };
        self.buffer.push((trace, objective));
        if self.buffer.len() >= self.sync_block {
            self.integrate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use locus_space::{ParamDef, ParamKind, ParamValue};

    #[test]
    fn converges_on_the_quadratic_space() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = TraceSampler::new(3).search(&space, 160, &mut f);
        let (_, best) = out.best.unwrap();
        assert!(best < 1.0, "sampler best {best}");
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let space = quadratic_space();
        let mut f1 = quadratic_objective;
        let mut f2 = quadratic_objective;
        let a = TraceSampler::new(7).search(&space, 60, &mut f1);
        let b = TraceSampler::new(7).search(&space, 60, &mut f2);
        assert_eq!(a, b);
    }

    #[test]
    fn never_reproposes_and_exhausts_tiny_spaces() {
        let space: Space = vec![
            ParamDef::new("x", ParamKind::Bool),
            ParamDef::new(
                "y",
                ParamKind::Enum(vec!["p".into(), "q".into(), "r".into()]),
            ),
        ]
        .into_iter()
        .collect();
        let mut m = TraceSampler::new(11);
        m.begin(&space, 50);
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = m.propose(&space) {
            assert!(seen.insert(p.canonical_key()), "duplicate proposal");
            m.observe(&p, Objective::Value(seen.len() as f64), true);
        }
        assert_eq!(seen.len(), 6, "the whole 2x3 space must be enumerated");
        assert!(m.propose(&space).is_none(), "finished is sticky");
    }

    #[test]
    fn fitted_distributions_are_normalized() {
        let space = quadratic_space();
        let mut m = TraceSampler::new(13).with_sync_block(4);
        m.begin(&space, 100);
        for i in 0..40 {
            let Some(p) = m.propose(&space) else { break };
            let obj = if i % 5 == 0 {
                Objective::Invalid
            } else {
                quadratic_objective(&p)
            };
            m.observe(&p, obj, true);
        }
        for dist in m.site_distributions() {
            if dist.is_empty() {
                continue;
            }
            let total: f64 = dist.values().sum();
            assert!((total - 1.0).abs() < 1e-9, "unnormalized: {total}");
            assert!(dist.values().all(|w| *w > 0.0));
        }
    }

    #[test]
    fn single_elite_seed_reproduces_the_elite_trace() {
        let space = quadratic_space();
        let elite = {
            let mut p = Point::new();
            p.set("tile", ParamValue::Int(32));
            p.set("alg", ParamValue::Choice(1));
            p.set("n", ParamValue::Int(10));
            p
        };
        let mut m = TraceSampler::new(17);
        m.begin(&space, 60);
        m.seed_observations(&space, &[(elite.clone(), 1.0)]);
        let elite_trace = space.trace_of(&elite).unwrap();
        // Generation 0 after seeding: zero exploration, and every site
        // distribution is degenerate — sampling must reproduce the
        // elite's trace exactly, every time.
        for _ in 0..20 {
            assert_eq!(m.sample_trace(), elite_trace);
        }
        // The propose path, by contrast, must never re-emit the seeded
        // elite itself.
        let elite_key = elite.canonical_key();
        for _ in 0..30 {
            let Some(p) = m.propose(&space) else { break };
            assert_ne!(p.canonical_key(), elite_key, "re-proposed the elite");
            m.observe(&p, quadratic_objective(&p), true);
        }
    }

    #[test]
    fn oracle_refusals_are_never_proposed() {
        let space = quadratic_space();
        let mut m = TraceSampler::new(19);
        let oracle: crate::LegalityOracle = std::sync::Arc::new(
            |p: &Point| matches!(p.get("tile"), Some(ParamValue::Int(v)) if *v <= 32),
        );
        m.attach_pruner(&oracle);
        m.begin(&space, 120);
        let mut proposals = 0;
        while let Some(p) = m.propose(&space) {
            let tile = p.get("tile").and_then(|v| v.as_int()).unwrap();
            assert!(tile <= 32, "illegal point proposed: tile {tile}");
            m.observe(&p, quadratic_objective(&p), true);
            proposals += 1;
            if proposals >= 150 {
                break;
            }
        }
        assert!(proposals > 20, "legal region barely explored: {proposals}");
    }

    #[test]
    fn non_finite_feedback_does_not_panic_or_poison() {
        let space = quadratic_space();
        let mut i = 0usize;
        let mut f = |p: &Point| {
            i += 1;
            match i % 4 {
                0 => Objective::Value(f64::NAN),
                1 => Objective::Value(f64::NEG_INFINITY),
                2 => Objective::Error,
                _ => quadratic_objective(p),
            }
        };
        let out = TraceSampler::new(23).search(&space, 60, &mut f);
        let (_, best) = out.best.expect("finite evaluations exist");
        assert!(best.is_finite());
    }
}
