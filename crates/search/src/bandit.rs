//! The OpenTuner-like search module: an ensemble of techniques
//! arbitrated by a sliding-window AUC credit-assignment bandit.
//!
//! OpenTuner's core idea (Ansel et al., PACT'14) is to run many simple
//! search techniques and shift evaluation budget toward whichever has
//! recently produced improvements, scored by the area under its
//! "improvement curve" within a sliding window, plus an exploration
//! bonus. This module reproduces that architecture with four
//! techniques — greedy mutation, differential evolution, hill climbing
//! and uniform random — over the generic [`Space`] operators.
//!
//! Batching: each proposal carries a pending tag naming the technique
//! that produced it, so observations arriving after a batch credit the
//! right arm. The UCB bonus counts in-flight (not yet observed)
//! proposals against an arm, which naturally diversifies the techniques
//! inside one batch; with batches of one this term is zero and the
//! behaviour is the classic sequential bandit.

use std::collections::VecDeque;

use locus_space::{Point, Space, SplitMix64};
use locus_trace::{kv, Tracer};

use crate::{Objective, SearchModule};

/// Sliding window length for AUC credit assignment.
const WINDOW: usize = 50;
/// Exploration constant of the UCB-style bonus.
const EXPLORATION: f64 = 1.4;
/// Elite population size.
const ELITES: usize = 8;

/// The OpenTuner substitute.
#[derive(Debug, Clone)]
pub struct BanditTuner {
    seed: u64,
    rng: SplitMix64,
    credits: Vec<Credit>,
    elites: Vec<(Point, f64)>,
    best: Option<(Point, f64)>,
    /// Technique index of every proposal not yet observed; `None` tags
    /// the seeding phase.
    pending: VecDeque<Option<usize>>,
    /// Keys the tuner must not propose again: warm-start priors (already
    /// measured by the store) and points refused as `Invalid`.
    avoid: std::collections::HashSet<String>,
    seeds_remaining: usize,
    total_uses: f64,
    stale: usize,
    stale_limit: usize,
    tracer: Tracer,
}

impl BanditTuner {
    /// Creates a tuner with a deterministic seed.
    pub fn new(seed: u64) -> BanditTuner {
        BanditTuner {
            seed,
            rng: SplitMix64::new(seed),
            credits: vec![Credit::default(); TECHNIQUES.len()],
            elites: Vec::new(),
            best: None,
            pending: VecDeque::new(),
            avoid: std::collections::HashSet::new(),
            seeds_remaining: 0,
            total_uses: 1.0,
            stale: 0,
            stale_limit: 256,
            tracer: Tracer::disabled(),
        }
    }
}

impl Default for BanditTuner {
    fn default() -> BanditTuner {
        BanditTuner::new(0x0931)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Technique {
    GreedyMutation,
    DifferentialEvolution,
    HillClimb,
    UniformRandom,
}

const TECHNIQUES: [Technique; 4] = [
    Technique::GreedyMutation,
    Technique::DifferentialEvolution,
    Technique::HillClimb,
    Technique::UniformRandom,
];

impl Technique {
    fn label(self) -> &'static str {
        match self {
            Technique::GreedyMutation => "greedy-mutation",
            Technique::DifferentialEvolution => "differential-evolution",
            Technique::HillClimb => "hill-climb",
            Technique::UniformRandom => "uniform-random",
        }
    }
}

/// Per-technique sliding window of improvement bits.
#[derive(Debug, Default, Clone)]
struct Credit {
    window: std::collections::VecDeque<bool>,
    uses: usize,
}

impl Credit {
    fn record(&mut self, improved: bool) {
        self.window.push_back(improved);
        if self.window.len() > WINDOW {
            self.window.pop_front();
        }
        self.uses += 1;
    }

    /// AUC score: recent improvements weigh more (trapezoid weights,
    /// like OpenTuner's `AUCBanditMetaTechnique`).
    fn auc(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &hit) in self.window.iter().enumerate() {
            let w = (i + 1) as f64;
            den += w;
            if hit {
                num += w;
            }
        }
        num / den
    }
}

impl SearchModule for BanditTuner {
    fn name(&self) -> &str {
        "bandit (opentuner-like)"
    }

    fn begin(&mut self, _space: &Space, budget: usize) {
        self.rng = SplitMix64::new(self.seed);
        self.credits = vec![Credit::default(); TECHNIQUES.len()];
        self.elites.clear();
        self.best = None;
        self.pending.clear();
        self.avoid.clear();
        // Seed with random points (a tenth of the budget, at least 2).
        self.seeds_remaining = (budget / 10).clamp(2, 32);
        self.total_uses = 1.0;
        self.stale = 0;
        self.stale_limit = budget.saturating_mul(8).max(256);
    }

    fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Warm start: prior observations populate the elite pool and the
    /// best-so-far, and stand in for the random seeding phase — each
    /// prior point replaces one pending random seed, so a well-stocked
    /// store sends the tuner straight into its adaptive techniques.
    fn seed_observations(&mut self, _space: &Space, prior: &[(Point, f64)]) {
        for (point, value) in prior {
            if !value.is_finite() {
                continue;
            }
            if self.best.as_ref().is_none_or(|(_, b)| value < b) {
                self.best = Some((point.clone(), *value));
            }
            insert_elite(&mut self.elites, point.clone(), *value);
        }
        // Priors are already measured: keep them as mutation parents,
        // never as proposals.
        for (point, _) in prior {
            self.avoid.insert(point.canonical_key());
        }
        self.seeds_remaining = self.seeds_remaining.saturating_sub(prior.len());
    }

    fn propose(&mut self, space: &Space) -> Option<Point> {
        if self.seeds_remaining > 0 {
            self.seeds_remaining -= 1;
            self.pending.push_back(None);
            return Some(space.random_point(&mut self.rng));
        }
        if self.stale >= self.stale_limit {
            return None;
        }
        // UCB-style technique selection; in-flight proposals count
        // toward an arm's use so a batch spreads across techniques.
        // `ln().max(0.0)` keeps the bonus finite when `total_uses`
        // dips below 1 (a zero-use state would otherwise take the
        // square root of a negative number), and `total_cmp` makes the
        // selection total even if a score degenerates — a NaN must
        // never panic the tuner mid-search.
        let (ti, _) = self
            .credits
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let in_flight = self.pending.iter().filter(|t| **t == Some(i)).count();
                let bonus = EXPLORATION
                    * ((self.total_uses.ln().max(0.0) / ((c.uses + in_flight) as f64 + 1.0))
                        .sqrt());
                (i, c.auc() + bonus)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty technique list");
        let technique = TECHNIQUES[ti];
        if self.tracer.is_enabled() {
            let (auc, uses) = (self.credits[ti].auc(), self.credits[ti].uses);
            self.tracer.instant("search", "bandit-arm", || {
                vec![
                    kv("arm", technique.label()),
                    kv("auc", auc),
                    kv("uses", uses as u64),
                ]
            });
        }
        let best = self.best.as_ref().map(|(p, _)| p.clone());
        // Resample (boundedly) rather than re-propose a warm-start
        // prior or a point already refused as invalid.
        let mut proposal = propose(technique, space, &self.elites, best.as_ref(), &mut self.rng);
        for _ in 0..16 {
            if !self.avoid.contains(&proposal.canonical_key()) {
                break;
            }
            proposal = propose(technique, space, &self.elites, best.as_ref(), &mut self.rng);
        }
        self.pending.push_back(Some(ti));
        Some(proposal)
    }

    fn observe(&mut self, point: &Point, objective: Objective, fresh: bool) {
        // A non-finite measurement (a NaN or infinite cost from a
        // degenerate simulation) must not become the best-so-far or an
        // elite — every comparison against it is vacuously false and
        // would poison the pool. Demote it to `Invalid`: the arm is
        // still charged a use, it just earns no credit.
        let objective = match objective {
            Objective::Value(v) if !v.is_finite() => Objective::Invalid,
            o => o,
        };
        if matches!(objective, Objective::Invalid) {
            self.avoid.insert(point.canonical_key());
        }
        let tag = self.pending.pop_front().flatten();
        let before = self.best.as_ref().map(|(_, v)| *v);
        if fresh {
            if let Objective::Value(v) = objective {
                if before.is_none_or(|b| v < b) {
                    self.best = Some((point.clone(), v));
                }
            }
        }
        let Some(ti) = tag else {
            // Seeding phase: populate the elite pool, no credit, but
            // count the use so the UCB exploration bonus is live from
            // the first post-seed selection.
            self.total_uses += 1.0;
            if fresh {
                if let Objective::Value(v) = objective {
                    insert_elite(&mut self.elites, point.clone(), v);
                }
            }
            return;
        };
        if !fresh {
            self.stale += 1;
            self.credits[ti].record(false);
            self.total_uses += 1.0;
            return;
        }
        self.stale = 0;
        let improved = match (before, self.best.as_ref().map(|(_, v)| *v)) {
            (None, Some(_)) => true,
            (Some(b), Some(a)) => a < b,
            _ => false,
        };
        self.credits[ti].record(improved);
        self.total_uses += 1.0;
        if let Objective::Value(v) = objective {
            insert_elite(&mut self.elites, point.clone(), v);
        }
    }
}

fn insert_elite(elites: &mut Vec<(Point, f64)>, point: Point, value: f64) {
    let pos = elites
        .iter()
        .position(|(_, v)| value < *v)
        .unwrap_or(elites.len());
    elites.insert(pos, (point, value));
    elites.truncate(ELITES);
}

fn propose(
    technique: Technique,
    space: &Space,
    elites: &[(Point, f64)],
    best: Option<&Point>,
    rng: &mut SplitMix64,
) -> Point {
    let fallback = |rng: &mut SplitMix64| space.random_point(rng);
    match technique {
        Technique::UniformRandom => fallback(rng),
        Technique::HillClimb => match best {
            Some(b) => space.mutate(b, 1, rng),
            None => fallback(rng),
        },
        Technique::GreedyMutation => {
            if elites.is_empty() {
                return fallback(rng);
            }
            let parent = &elites[rng.below_usize(elites.len())].0;
            let strength = 1 + rng.below_usize(3);
            space.mutate(parent, strength, rng)
        }
        Technique::DifferentialEvolution => {
            if elites.len() < 2 {
                return fallback(rng);
            }
            let a = &elites[rng.below_usize(elites.len())].0;
            let b = &elites[rng.below_usize(elites.len())].0;
            let child = space.crossover(a, b, rng);
            space.mutate(&child, 1, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use crate::RandomSearch;

    #[test]
    fn converges_on_smooth_landscape() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = BanditTuner::new(3).search(&space, 150, &mut f);
        let (_, best) = out.best.unwrap();
        assert!(best < 0.5, "bandit best {best}");
    }

    #[test]
    fn beats_random_search_on_average() {
        let space = quadratic_space();
        let budget = 60;
        let mut bandit_total = 0.0;
        let mut random_total = 0.0;
        for seed in 0..7 {
            let mut f1 = quadratic_objective;
            let mut f2 = quadratic_objective;
            bandit_total += BanditTuner::new(seed)
                .search(&space, budget, &mut f1)
                .best
                .unwrap()
                .1;
            random_total += RandomSearch::new(seed)
                .search(&space, budget, &mut f2)
                .best
                .unwrap()
                .1;
        }
        assert!(
            bandit_total <= random_total,
            "bandit {bandit_total} vs random {random_total}"
        );
    }

    #[test]
    fn respects_budget_exactly() {
        let space = quadratic_space();
        let mut count = 0usize;
        let mut f = |p: &Point| {
            count += 1;
            quadratic_objective(p)
        };
        let out = BanditTuner::new(5).search(&space, 40, &mut f);
        assert_eq!(out.evaluations, 40);
        assert_eq!(count, out.evaluations + out.invalid);
    }

    #[test]
    fn survives_all_invalid_objectives() {
        let space = quadratic_space();
        let mut f = |_: &Point| Objective::Invalid;
        let out = BanditTuner::new(1).search(&space, 20, &mut f);
        assert!(out.best.is_none());
        assert_eq!(out.evaluations, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let space = quadratic_space();
        let mut f1 = quadratic_objective;
        let mut f2 = quadratic_objective;
        let a = BanditTuner::new(11).search(&space, 50, &mut f1);
        let b = BanditTuner::new(11).search(&space, 50, &mut f2);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn seeding_primes_elites_and_skips_random_seeds() {
        let space = quadratic_space();
        let mut m = BanditTuner::new(7);
        m.begin(&space, 100);
        let seeds_before = m.seeds_remaining;
        assert!(seeds_before > 0);

        let prior: Vec<_> = (0..seeds_before)
            .map(|i| {
                let p = space.point_at(i as u128 * 3);
                let v = match quadratic_objective(&p) {
                    Objective::Value(v) => v,
                    _ => unreachable!(),
                };
                (p, v)
            })
            .collect();
        m.seed_observations(&space, &prior);
        assert_eq!(m.seeds_remaining, 0, "priors replace the seeding phase");
        assert!(!m.elites.is_empty());
        let best_prior = prior.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        assert_eq!(m.best.as_ref().map(|(_, v)| *v), Some(best_prior));
        // The first proposal comes from an adaptive technique, not the
        // seeding phase.
        assert!(m.propose(&space).is_some());
        assert!(m.pending.front().map(|t| t.is_some()).unwrap_or(false));
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let space = quadratic_space();
        let prior = vec![(space.point_at(5), 3.5), (space.point_at(11), 4.0)];
        let run = || {
            let mut m = BanditTuner::new(9);
            m.begin(&space, 60);
            m.seed_observations(&space, &prior);
            let mut book = crate::Bookkeeper::new(60);
            while !book.done() {
                let batch = m.propose_batch(&space, 8);
                if batch.is_empty() {
                    break;
                }
                for p in &batch {
                    let (obj, fresh) = book.record(p, quadratic_objective);
                    m.observe(p, obj, fresh);
                }
            }
            book.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn nan_objectives_and_zero_use_state_do_not_poison_selection() {
        let space = quadratic_space();
        let mut m = BanditTuner::new(13);
        m.begin(&space, 100);
        // Exhaust seeding with NaN observations: none may become the
        // best-so-far or an elite.
        let seeds = m.propose_batch(&space, m.seeds_remaining);
        for p in &seeds {
            m.observe(p, Objective::Value(f64::NAN), true);
        }
        assert!(m.best.is_none());
        assert!(m.elites.is_empty());
        // Degenerate zero-use state: `ln(total_uses)` goes negative, so
        // without the finite-guard every bonus would be NaN and the
        // old `partial_cmp(..).expect` selection panicked here.
        m.total_uses = 0.5;
        let p = m
            .propose(&space)
            .expect("selection must survive NaN scores");
        m.observe(&p, Objective::Value(f64::NAN), true);
        assert!(m.best.is_none());
        // NaN priors are ignored the same way.
        m.seed_observations(&space, &[(space.point_at(1), f64::NAN)]);
        assert!(m.best.is_none());
        // A finite observation afterwards works normally.
        let q = m.propose(&space).expect("proposal");
        m.observe(&q, Objective::Value(1.0), true);
        assert_eq!(m.best.as_ref().map(|(_, v)| *v), Some(1.0));
    }

    #[test]
    fn batches_spread_across_techniques() {
        let space = quadratic_space();
        let mut m = BanditTuner::new(7);
        m.begin(&space, 100);
        // Drain the seeding phase first.
        let seeds = m.propose_batch(&space, 10);
        for p in &seeds {
            let (obj, fresh) = (quadratic_objective(p), true);
            m.observe(p, obj, fresh);
        }
        let batch = m.propose_batch(&space, 8);
        assert_eq!(batch.len(), 8);
        // The in-flight term must have engaged all four arms.
        let tagged: std::collections::BTreeSet<_> = m.pending.iter().flatten().copied().collect();
        assert_eq!(tagged.len(), TECHNIQUES.len());
    }
}
