//! The OpenTuner-like search module: an ensemble of techniques
//! arbitrated by a sliding-window AUC credit-assignment bandit.
//!
//! OpenTuner's core idea (Ansel et al., PACT'14) is to run many simple
//! search techniques and shift evaluation budget toward whichever has
//! recently produced improvements, scored by the area under its
//! "improvement curve" within a sliding window, plus an exploration
//! bonus. This module reproduces that architecture with four
//! techniques — greedy mutation, differential evolution, hill climbing
//! and uniform random — over the generic [`Space`] operators.

use locus_space::{Point, Space};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Evaluator, Objective, SearchModule, SearchOutcome};

/// Sliding window length for AUC credit assignment.
const WINDOW: usize = 50;
/// Exploration constant of the UCB-style bonus.
const EXPLORATION: f64 = 1.4;
/// Elite population size.
const ELITES: usize = 8;

/// The OpenTuner substitute.
#[derive(Debug, Clone)]
pub struct BanditTuner {
    seed: u64,
}

impl BanditTuner {
    /// Creates a tuner with a deterministic seed.
    pub fn new(seed: u64) -> BanditTuner {
        BanditTuner { seed }
    }
}

impl Default for BanditTuner {
    fn default() -> BanditTuner {
        BanditTuner::new(0x0931)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Technique {
    GreedyMutation,
    DifferentialEvolution,
    HillClimb,
    UniformRandom,
}

const TECHNIQUES: [Technique; 4] = [
    Technique::GreedyMutation,
    Technique::DifferentialEvolution,
    Technique::HillClimb,
    Technique::UniformRandom,
];

/// Per-technique sliding window of improvement bits.
#[derive(Debug, Default, Clone)]
struct Credit {
    window: std::collections::VecDeque<bool>,
    uses: usize,
}

impl Credit {
    fn record(&mut self, improved: bool) {
        self.window.push_back(improved);
        if self.window.len() > WINDOW {
            self.window.pop_front();
        }
        self.uses += 1;
    }

    /// AUC score: recent improvements weigh more (trapezoid weights,
    /// like OpenTuner's `AUCBanditMetaTechnique`).
    fn auc(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &hit) in self.window.iter().enumerate() {
            let w = (i + 1) as f64;
            den += w;
            if hit {
                num += w;
            }
        }
        num / den
    }
}

impl SearchModule for BanditTuner {
    fn name(&self) -> &str {
        "bandit (opentuner-like)"
    }

    fn search(
        &mut self,
        space: &Space,
        budget: usize,
        evaluate: &mut dyn FnMut(&Point) -> Objective,
    ) -> SearchOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut eval = Evaluator::new(budget, evaluate);
        let mut credits = vec![Credit::default(); TECHNIQUES.len()];
        // Elite population of (point, value), best first.
        let mut elites: Vec<(Point, f64)> = Vec::new();

        // Seed with random points (a tenth of the budget, at least 2).
        let seeds = (budget / 10).clamp(2, 32);
        for _ in 0..seeds {
            if eval.done() {
                break;
            }
            let p = space.random_point(&mut rng);
            let (obj, fresh) = eval.eval(&p);
            if fresh {
                if let Objective::Value(v) = obj {
                    insert_elite(&mut elites, p, v);
                }
            }
        }

        let mut total_uses = 1.0f64;
        let mut stale = 0usize;
        while !eval.done() && stale < budget.saturating_mul(8).max(256) {
            // UCB-style technique selection.
            let (ti, _) = credits
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let bonus = EXPLORATION * ((total_uses.ln() / (c.uses as f64 + 1.0)).sqrt());
                    (i, c.auc() + bonus)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
                .expect("non-empty technique list");
            let technique = TECHNIQUES[ti];

            let proposal = propose(technique, space, &elites, eval.best_point(), &mut rng);
            let before = eval.best_value();
            let (obj, fresh) = eval.eval(&proposal);
            if !fresh {
                stale += 1;
                credits[ti].record(false);
                total_uses += 1.0;
                continue;
            }
            stale = 0;
            let improved = match (before, eval.best_value()) {
                (None, Some(_)) => true,
                (Some(b), Some(a)) => a < b,
                _ => false,
            };
            credits[ti].record(improved);
            total_uses += 1.0;
            if let Objective::Value(v) = obj {
                insert_elite(&mut elites, proposal, v);
            }
        }
        eval.finish()
    }
}

fn insert_elite(elites: &mut Vec<(Point, f64)>, point: Point, value: f64) {
    let pos = elites
        .iter()
        .position(|(_, v)| value < *v)
        .unwrap_or(elites.len());
    elites.insert(pos, (point, value));
    elites.truncate(ELITES);
}

fn propose(
    technique: Technique,
    space: &Space,
    elites: &[(Point, f64)],
    best: Option<&Point>,
    rng: &mut StdRng,
) -> Point {
    let fallback = |rng: &mut StdRng| space.random_point(rng);
    match technique {
        Technique::UniformRandom => fallback(rng),
        Technique::HillClimb => match best {
            Some(b) => space.mutate(b, 1, rng),
            None => fallback(rng),
        },
        Technique::GreedyMutation => {
            if elites.is_empty() {
                return fallback(rng);
            }
            let parent = &elites[rng.random_range(0..elites.len())].0;
            let strength = 1 + rng.random_range(0..3);
            space.mutate(parent, strength, rng)
        }
        Technique::DifferentialEvolution => {
            if elites.len() < 2 {
                return fallback(rng);
            }
            let a = &elites[rng.random_range(0..elites.len())].0;
            let b = &elites[rng.random_range(0..elites.len())].0;
            let child = space.crossover(a, b, rng);
            space.mutate(&child, 1, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use crate::RandomSearch;

    #[test]
    fn converges_on_smooth_landscape() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = BanditTuner::new(3).search(&space, 150, &mut f);
        let (_, best) = out.best.unwrap();
        assert!(best < 0.5, "bandit best {best}");
    }

    #[test]
    fn beats_random_search_on_average() {
        let space = quadratic_space();
        let budget = 60;
        let mut bandit_total = 0.0;
        let mut random_total = 0.0;
        for seed in 0..7 {
            let mut f1 = quadratic_objective;
            let mut f2 = quadratic_objective;
            bandit_total += BanditTuner::new(seed)
                .search(&space, budget, &mut f1)
                .best
                .unwrap()
                .1;
            random_total += RandomSearch::new(seed)
                .search(&space, budget, &mut f2)
                .best
                .unwrap()
                .1;
        }
        assert!(
            bandit_total <= random_total,
            "bandit {bandit_total} vs random {random_total}"
        );
    }

    #[test]
    fn respects_budget_exactly() {
        let space = quadratic_space();
        let mut count = 0usize;
        let mut f = |p: &Point| {
            count += 1;
            quadratic_objective(p)
        };
        let out = BanditTuner::new(5).search(&space, 40, &mut f);
        assert_eq!(out.evaluations, 40);
        assert_eq!(count, out.evaluations + out.invalid);
    }

    #[test]
    fn survives_all_invalid_objectives() {
        let space = quadratic_space();
        let mut f = |_: &Point| Objective::Invalid;
        let out = BanditTuner::new(1).search(&space, 20, &mut f);
        assert!(out.best.is_none());
        assert_eq!(out.evaluations, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let space = quadratic_space();
        let mut f1 = quadratic_objective;
        let mut f2 = quadratic_objective;
        let a = BanditTuner::new(11).search(&space, 50, &mut f1);
        let b = BanditTuner::new(11).search(&space, 50, &mut f2);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }
}
